/root/repo/target/debug/deps/xmlval-6a70e34527029178.d: crates/xmlval/src/lib.rs crates/xmlval/src/error.rs crates/xmlval/src/node.rs crates/xmlval/src/parse.rs crates/xmlval/src/path.rs crates/xmlval/src/rowset.rs

/root/repo/target/debug/deps/xmlval-6a70e34527029178: crates/xmlval/src/lib.rs crates/xmlval/src/error.rs crates/xmlval/src/node.rs crates/xmlval/src/parse.rs crates/xmlval/src/path.rs crates/xmlval/src/rowset.rs

crates/xmlval/src/lib.rs:
crates/xmlval/src/error.rs:
crates/xmlval/src/node.rs:
crates/xmlval/src/parse.rs:
crates/xmlval/src/path.rs:
crates/xmlval/src/rowset.rs:
