/root/repo/target/debug/deps/fig7-61b34f68a36a4892.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-61b34f68a36a4892: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
