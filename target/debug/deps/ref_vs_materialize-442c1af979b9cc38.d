/root/repo/target/debug/deps/ref_vs_materialize-442c1af979b9cc38.d: crates/bench/benches/ref_vs_materialize.rs

/root/repo/target/debug/deps/ref_vs_materialize-442c1af979b9cc38: crates/bench/benches/ref_vs_materialize.rs

crates/bench/benches/ref_vs_materialize.rs:
