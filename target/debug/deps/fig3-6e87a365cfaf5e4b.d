/root/repo/target/debug/deps/fig3-6e87a365cfaf5e4b.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-6e87a365cfaf5e4b: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
