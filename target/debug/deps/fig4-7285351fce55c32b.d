/root/repo/target/debug/deps/fig4-7285351fce55c32b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-7285351fce55c32b: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
