/root/repo/target/debug/deps/bis-abc672a876b87df3.d: crates/bis/src/lib.rs crates/bis/src/activities.rs crates/bis/src/cursor.rs crates/bis/src/datasource.rs crates/bis/src/deployment.rs crates/bis/src/integration.rs crates/bis/src/sample.rs crates/bis/src/setref.rs

/root/repo/target/debug/deps/bis-abc672a876b87df3: crates/bis/src/lib.rs crates/bis/src/activities.rs crates/bis/src/cursor.rs crates/bis/src/datasource.rs crates/bis/src/deployment.rs crates/bis/src/integration.rs crates/bis/src/sample.rs crates/bis/src/setref.rs

crates/bis/src/lib.rs:
crates/bis/src/activities.rs:
crates/bis/src/cursor.rs:
crates/bis/src/datasource.rs:
crates/bis/src/deployment.rs:
crates/bis/src/integration.rs:
crates/bis/src/sample.rs:
crates/bis/src/setref.rs:
