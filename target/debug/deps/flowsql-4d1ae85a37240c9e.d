/root/repo/target/debug/deps/flowsql-4d1ae85a37240c9e.d: src/lib.rs

/root/repo/target/debug/deps/libflowsql-4d1ae85a37240c9e.rlib: src/lib.rs

/root/repo/target/debug/deps/libflowsql-4d1ae85a37240c9e.rmeta: src/lib.rs

src/lib.rs:
