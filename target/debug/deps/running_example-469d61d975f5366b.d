/root/repo/target/debug/deps/running_example-469d61d975f5366b.d: tests/running_example.rs

/root/repo/target/debug/deps/running_example-469d61d975f5366b: tests/running_example.rs

tests/running_example.rs:
