/root/repo/target/debug/deps/table2-0b4129b76bc75e88.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-0b4129b76bc75e88: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
