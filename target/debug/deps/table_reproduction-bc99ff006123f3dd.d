/root/repo/target/debug/deps/table_reproduction-bc99ff006123f3dd.d: tests/table_reproduction.rs

/root/repo/target/debug/deps/table_reproduction-bc99ff006123f3dd: tests/table_reproduction.rs

tests/table_reproduction.rs:
