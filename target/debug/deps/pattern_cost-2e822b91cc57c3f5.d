/root/repo/target/debug/deps/pattern_cost-2e822b91cc57c3f5.d: crates/bench/benches/pattern_cost.rs

/root/repo/target/debug/deps/pattern_cost-2e822b91cc57c3f5: crates/bench/benches/pattern_cost.rs

crates/bench/benches/pattern_cost.rs:
