/root/repo/target/debug/deps/table2-1c3438b80d9dd9a8.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-1c3438b80d9dd9a8: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
