/root/repo/target/debug/deps/adapter-d566efe74a175e52.d: crates/adapter/src/lib.rs crates/adapter/src/envelope.rs crates/adapter/src/service.rs

/root/repo/target/debug/deps/adapter-d566efe74a175e52: crates/adapter/src/lib.rs crates/adapter/src/envelope.rs crates/adapter/src/service.rs

crates/adapter/src/lib.rs:
crates/adapter/src/envelope.rs:
crates/adapter/src/service.rs:
