/root/repo/target/debug/deps/bench-5d40514ebd7980cc.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/rng.rs

/root/repo/target/debug/deps/bench-5d40514ebd7980cc: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/rng.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/rng.rs:
