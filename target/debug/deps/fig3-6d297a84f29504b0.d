/root/repo/target/debug/deps/fig3-6d297a84f29504b0.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-6d297a84f29504b0: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
