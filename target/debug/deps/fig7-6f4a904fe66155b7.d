/root/repo/target/debug/deps/fig7-6f4a904fe66155b7.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-6f4a904fe66155b7: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
