/root/repo/target/debug/deps/fig1-31e1de9c26f9b3a1.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-31e1de9c26f9b3a1: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
