/root/repo/target/debug/deps/fig5-f45f1cae218162cc.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-f45f1cae218162cc: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
