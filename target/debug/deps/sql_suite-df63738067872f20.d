/root/repo/target/debug/deps/sql_suite-df63738067872f20.d: crates/sqlkernel/tests/sql_suite.rs

/root/repo/target/debug/deps/sql_suite-df63738067872f20: crates/sqlkernel/tests/sql_suite.rs

crates/sqlkernel/tests/sql_suite.rs:
