/root/repo/target/debug/deps/fig8-df012540b9592113.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-df012540b9592113: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
