/root/repo/target/debug/deps/atomic_sequence-ee8f4c6ca71b1b82.d: crates/bis/tests/atomic_sequence.rs

/root/repo/target/debug/deps/atomic_sequence-ee8f4c6ca71b1b82: crates/bis/tests/atomic_sequence.rs

crates/bis/tests/atomic_sequence.rs:
