/root/repo/target/debug/deps/bis-5757eed1021a776a.d: crates/bis/src/lib.rs crates/bis/src/activities.rs crates/bis/src/cursor.rs crates/bis/src/datasource.rs crates/bis/src/deployment.rs crates/bis/src/integration.rs crates/bis/src/sample.rs crates/bis/src/setref.rs

/root/repo/target/debug/deps/libbis-5757eed1021a776a.rlib: crates/bis/src/lib.rs crates/bis/src/activities.rs crates/bis/src/cursor.rs crates/bis/src/datasource.rs crates/bis/src/deployment.rs crates/bis/src/integration.rs crates/bis/src/sample.rs crates/bis/src/setref.rs

/root/repo/target/debug/deps/libbis-5757eed1021a776a.rmeta: crates/bis/src/lib.rs crates/bis/src/activities.rs crates/bis/src/cursor.rs crates/bis/src/datasource.rs crates/bis/src/deployment.rs crates/bis/src/integration.rs crates/bis/src/sample.rs crates/bis/src/setref.rs

crates/bis/src/lib.rs:
crates/bis/src/activities.rs:
crates/bis/src/cursor.rs:
crates/bis/src/datasource.rs:
crates/bis/src/deployment.rs:
crates/bis/src/integration.rs:
crates/bis/src/sample.rs:
crates/bis/src/setref.rs:
