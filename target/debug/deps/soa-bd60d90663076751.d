/root/repo/target/debug/deps/soa-bd60d90663076751.d: crates/soa/src/lib.rs crates/soa/src/bpelx.rs crates/soa/src/cursor.rs crates/soa/src/env.rs crates/soa/src/functions.rs crates/soa/src/integration.rs crates/soa/src/sample.rs crates/soa/src/xsql.rs

/root/repo/target/debug/deps/libsoa-bd60d90663076751.rlib: crates/soa/src/lib.rs crates/soa/src/bpelx.rs crates/soa/src/cursor.rs crates/soa/src/env.rs crates/soa/src/functions.rs crates/soa/src/integration.rs crates/soa/src/sample.rs crates/soa/src/xsql.rs

/root/repo/target/debug/deps/libsoa-bd60d90663076751.rmeta: crates/soa/src/lib.rs crates/soa/src/bpelx.rs crates/soa/src/cursor.rs crates/soa/src/env.rs crates/soa/src/functions.rs crates/soa/src/integration.rs crates/soa/src/sample.rs crates/soa/src/xsql.rs

crates/soa/src/lib.rs:
crates/soa/src/bpelx.rs:
crates/soa/src/cursor.rs:
crates/soa/src/env.rs:
crates/soa/src/functions.rs:
crates/soa/src/integration.rs:
crates/soa/src/sample.rs:
crates/soa/src/xsql.rs:
