/root/repo/target/debug/deps/adapter-18665767f4ce20b5.d: crates/adapter/src/lib.rs crates/adapter/src/envelope.rs crates/adapter/src/service.rs

/root/repo/target/debug/deps/libadapter-18665767f4ce20b5.rlib: crates/adapter/src/lib.rs crates/adapter/src/envelope.rs crates/adapter/src/service.rs

/root/repo/target/debug/deps/libadapter-18665767f4ce20b5.rmeta: crates/adapter/src/lib.rs crates/adapter/src/envelope.rs crates/adapter/src/service.rs

crates/adapter/src/lib.rs:
crates/adapter/src/envelope.rs:
crates/adapter/src/service.rs:
