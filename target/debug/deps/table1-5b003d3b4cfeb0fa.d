/root/repo/target/debug/deps/table1-5b003d3b4cfeb0fa.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-5b003d3b4cfeb0fa: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
