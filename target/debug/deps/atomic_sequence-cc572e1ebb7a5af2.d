/root/repo/target/debug/deps/atomic_sequence-cc572e1ebb7a5af2.d: crates/bench/benches/atomic_sequence.rs

/root/repo/target/debug/deps/atomic_sequence-cc572e1ebb7a5af2: crates/bench/benches/atomic_sequence.rs

crates/bench/benches/atomic_sequence.rs:
