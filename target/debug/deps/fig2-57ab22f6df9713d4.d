/root/repo/target/debug/deps/fig2-57ab22f6df9713d4.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-57ab22f6df9713d4: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
