/root/repo/target/debug/deps/wf-1ffacd14f7f131d4.d: crates/wf/src/lib.rs crates/wf/src/activities.rs crates/wf/src/bpel_import.rs crates/wf/src/dataset.rs crates/wf/src/host.rs crates/wf/src/integration.rs crates/wf/src/sample.rs crates/wf/src/tracking.rs crates/wf/src/xoml.rs

/root/repo/target/debug/deps/wf-1ffacd14f7f131d4: crates/wf/src/lib.rs crates/wf/src/activities.rs crates/wf/src/bpel_import.rs crates/wf/src/dataset.rs crates/wf/src/host.rs crates/wf/src/integration.rs crates/wf/src/sample.rs crates/wf/src/tracking.rs crates/wf/src/xoml.rs

crates/wf/src/lib.rs:
crates/wf/src/activities.rs:
crates/wf/src/bpel_import.rs:
crates/wf/src/dataset.rs:
crates/wf/src/host.rs:
crates/wf/src/integration.rs:
crates/wf/src/sample.rs:
crates/wf/src/tracking.rs:
crates/wf/src/xoml.rs:
