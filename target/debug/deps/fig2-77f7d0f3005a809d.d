/root/repo/target/debug/deps/fig2-77f7d0f3005a809d.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-77f7d0f3005a809d: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
