/root/repo/target/debug/deps/bench-a40cb2e4e6074376.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/rng.rs

/root/repo/target/debug/deps/libbench-a40cb2e4e6074376.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/rng.rs

/root/repo/target/debug/deps/libbench-a40cb2e4e6074376.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/rng.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/rng.rs:
