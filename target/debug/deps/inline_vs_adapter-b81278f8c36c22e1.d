/root/repo/target/debug/deps/inline_vs_adapter-b81278f8c36c22e1.d: crates/bench/benches/inline_vs_adapter.rs

/root/repo/target/debug/deps/inline_vs_adapter-b81278f8c36c22e1: crates/bench/benches/inline_vs_adapter.rs

crates/bench/benches/inline_vs_adapter.rs:
