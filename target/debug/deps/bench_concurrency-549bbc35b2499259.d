/root/repo/target/debug/deps/bench_concurrency-549bbc35b2499259.d: crates/bench/src/bin/bench_concurrency.rs

/root/repo/target/debug/deps/bench_concurrency-549bbc35b2499259: crates/bench/src/bin/bench_concurrency.rs

crates/bench/src/bin/bench_concurrency.rs:
