/root/repo/target/debug/deps/fig6-17f3955d90496486.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-17f3955d90496486: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
