/root/repo/target/debug/deps/patterns-a0c7966d6d6a37bc.d: crates/patterns/src/lib.rs crates/patterns/src/paper.rs crates/patterns/src/pattern.rs crates/patterns/src/probe.rs crates/patterns/src/product.rs crates/patterns/src/report.rs crates/patterns/src/support.rs crates/patterns/src/taxonomy.rs

/root/repo/target/debug/deps/patterns-a0c7966d6d6a37bc: crates/patterns/src/lib.rs crates/patterns/src/paper.rs crates/patterns/src/pattern.rs crates/patterns/src/probe.rs crates/patterns/src/product.rs crates/patterns/src/report.rs crates/patterns/src/support.rs crates/patterns/src/taxonomy.rs

crates/patterns/src/lib.rs:
crates/patterns/src/paper.rs:
crates/patterns/src/pattern.rs:
crates/patterns/src/probe.rs:
crates/patterns/src/product.rs:
crates/patterns/src/report.rs:
crates/patterns/src/support.rs:
crates/patterns/src/taxonomy.rs:
