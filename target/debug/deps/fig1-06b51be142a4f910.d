/root/repo/target/debug/deps/fig1-06b51be142a4f910.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-06b51be142a4f910: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
