/root/repo/target/debug/deps/fig8-fe307f3f73a38fab.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-fe307f3f73a38fab: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
