/root/repo/target/debug/deps/envelope_edge_cases-90802c5ef721ce9f.d: crates/adapter/tests/envelope_edge_cases.rs

/root/repo/target/debug/deps/envelope_edge_cases-90802c5ef721ce9f: crates/adapter/tests/envelope_edge_cases.rs

crates/adapter/tests/envelope_edge_cases.rs:
