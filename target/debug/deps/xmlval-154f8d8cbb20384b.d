/root/repo/target/debug/deps/xmlval-154f8d8cbb20384b.d: crates/xmlval/src/lib.rs crates/xmlval/src/error.rs crates/xmlval/src/node.rs crates/xmlval/src/parse.rs crates/xmlval/src/path.rs crates/xmlval/src/rowset.rs

/root/repo/target/debug/deps/libxmlval-154f8d8cbb20384b.rlib: crates/xmlval/src/lib.rs crates/xmlval/src/error.rs crates/xmlval/src/node.rs crates/xmlval/src/parse.rs crates/xmlval/src/path.rs crates/xmlval/src/rowset.rs

/root/repo/target/debug/deps/libxmlval-154f8d8cbb20384b.rmeta: crates/xmlval/src/lib.rs crates/xmlval/src/error.rs crates/xmlval/src/node.rs crates/xmlval/src/parse.rs crates/xmlval/src/path.rs crates/xmlval/src/rowset.rs

crates/xmlval/src/lib.rs:
crates/xmlval/src/error.rs:
crates/xmlval/src/node.rs:
crates/xmlval/src/parse.rs:
crates/xmlval/src/path.rs:
crates/xmlval/src/rowset.rs:
