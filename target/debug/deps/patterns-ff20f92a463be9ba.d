/root/repo/target/debug/deps/patterns-ff20f92a463be9ba.d: crates/patterns/src/lib.rs crates/patterns/src/paper.rs crates/patterns/src/pattern.rs crates/patterns/src/probe.rs crates/patterns/src/product.rs crates/patterns/src/report.rs crates/patterns/src/support.rs crates/patterns/src/taxonomy.rs

/root/repo/target/debug/deps/libpatterns-ff20f92a463be9ba.rlib: crates/patterns/src/lib.rs crates/patterns/src/paper.rs crates/patterns/src/pattern.rs crates/patterns/src/probe.rs crates/patterns/src/product.rs crates/patterns/src/report.rs crates/patterns/src/support.rs crates/patterns/src/taxonomy.rs

/root/repo/target/debug/deps/libpatterns-ff20f92a463be9ba.rmeta: crates/patterns/src/lib.rs crates/patterns/src/paper.rs crates/patterns/src/pattern.rs crates/patterns/src/probe.rs crates/patterns/src/product.rs crates/patterns/src/report.rs crates/patterns/src/support.rs crates/patterns/src/taxonomy.rs

crates/patterns/src/lib.rs:
crates/patterns/src/paper.rs:
crates/patterns/src/pattern.rs:
crates/patterns/src/probe.rs:
crates/patterns/src/product.rs:
crates/patterns/src/report.rs:
crates/patterns/src/support.rs:
crates/patterns/src/taxonomy.rs:
