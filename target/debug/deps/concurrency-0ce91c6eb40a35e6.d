/root/repo/target/debug/deps/concurrency-0ce91c6eb40a35e6.d: crates/sqlkernel/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-0ce91c6eb40a35e6: crates/sqlkernel/tests/concurrency.rs

crates/sqlkernel/tests/concurrency.rs:
