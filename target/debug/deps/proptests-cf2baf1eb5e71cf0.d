/root/repo/target/debug/deps/proptests-cf2baf1eb5e71cf0.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-cf2baf1eb5e71cf0: tests/proptests.rs

tests/proptests.rs:
