/root/repo/target/debug/deps/verification-4911e4cde42ffd26.d: crates/patterns/tests/verification.rs

/root/repo/target/debug/deps/verification-4911e4cde42ffd26: crates/patterns/tests/verification.rs

crates/patterns/tests/verification.rs:
