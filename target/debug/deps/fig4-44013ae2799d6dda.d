/root/repo/target/debug/deps/fig4-44013ae2799d6dda.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-44013ae2799d6dda: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
