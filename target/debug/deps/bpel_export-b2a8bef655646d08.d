/root/repo/target/debug/deps/bpel_export-b2a8bef655646d08.d: tests/bpel_export.rs

/root/repo/target/debug/deps/bpel_export-b2a8bef655646d08: tests/bpel_export.rs

tests/bpel_export.rs:
