/root/repo/target/debug/deps/flowcore-95ae26b8122e7f6c.d: crates/flowcore/src/lib.rs crates/flowcore/src/activity.rs crates/flowcore/src/audit.rs crates/flowcore/src/bpel.rs crates/flowcore/src/builtins.rs crates/flowcore/src/engine.rs crates/flowcore/src/error.rs crates/flowcore/src/process.rs crates/flowcore/src/service.rs crates/flowcore/src/value.rs

/root/repo/target/debug/deps/libflowcore-95ae26b8122e7f6c.rlib: crates/flowcore/src/lib.rs crates/flowcore/src/activity.rs crates/flowcore/src/audit.rs crates/flowcore/src/bpel.rs crates/flowcore/src/builtins.rs crates/flowcore/src/engine.rs crates/flowcore/src/error.rs crates/flowcore/src/process.rs crates/flowcore/src/service.rs crates/flowcore/src/value.rs

/root/repo/target/debug/deps/libflowcore-95ae26b8122e7f6c.rmeta: crates/flowcore/src/lib.rs crates/flowcore/src/activity.rs crates/flowcore/src/audit.rs crates/flowcore/src/bpel.rs crates/flowcore/src/builtins.rs crates/flowcore/src/engine.rs crates/flowcore/src/error.rs crates/flowcore/src/process.rs crates/flowcore/src/service.rs crates/flowcore/src/value.rs

crates/flowcore/src/lib.rs:
crates/flowcore/src/activity.rs:
crates/flowcore/src/audit.rs:
crates/flowcore/src/bpel.rs:
crates/flowcore/src/builtins.rs:
crates/flowcore/src/engine.rs:
crates/flowcore/src/error.rs:
crates/flowcore/src/process.rs:
crates/flowcore/src/service.rs:
crates/flowcore/src/value.rs:
