/root/repo/target/debug/deps/sqlkernel_core-5471bba12b0596e2.d: crates/bench/benches/sqlkernel_core.rs

/root/repo/target/debug/deps/sqlkernel_core-5471bba12b0596e2: crates/bench/benches/sqlkernel_core.rs

crates/bench/benches/sqlkernel_core.rs:
