/root/repo/target/debug/deps/table1-b54b07b238fabb67.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-b54b07b238fabb67: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
