/root/repo/target/debug/deps/wf-30c2da978dff8e78.d: crates/wf/src/lib.rs crates/wf/src/activities.rs crates/wf/src/bpel_import.rs crates/wf/src/dataset.rs crates/wf/src/host.rs crates/wf/src/integration.rs crates/wf/src/sample.rs crates/wf/src/tracking.rs crates/wf/src/xoml.rs

/root/repo/target/debug/deps/libwf-30c2da978dff8e78.rlib: crates/wf/src/lib.rs crates/wf/src/activities.rs crates/wf/src/bpel_import.rs crates/wf/src/dataset.rs crates/wf/src/host.rs crates/wf/src/integration.rs crates/wf/src/sample.rs crates/wf/src/tracking.rs crates/wf/src/xoml.rs

/root/repo/target/debug/deps/libwf-30c2da978dff8e78.rmeta: crates/wf/src/lib.rs crates/wf/src/activities.rs crates/wf/src/bpel_import.rs crates/wf/src/dataset.rs crates/wf/src/host.rs crates/wf/src/integration.rs crates/wf/src/sample.rs crates/wf/src/tracking.rs crates/wf/src/xoml.rs

crates/wf/src/lib.rs:
crates/wf/src/activities.rs:
crates/wf/src/bpel_import.rs:
crates/wf/src/dataset.rs:
crates/wf/src/host.rs:
crates/wf/src/integration.rs:
crates/wf/src/sample.rs:
crates/wf/src/tracking.rs:
crates/wf/src/xoml.rs:
