/root/repo/target/debug/deps/soa-0b167c272c8f721f.d: crates/soa/src/lib.rs crates/soa/src/bpelx.rs crates/soa/src/cursor.rs crates/soa/src/env.rs crates/soa/src/functions.rs crates/soa/src/integration.rs crates/soa/src/sample.rs crates/soa/src/xsql.rs

/root/repo/target/debug/deps/soa-0b167c272c8f721f: crates/soa/src/lib.rs crates/soa/src/bpelx.rs crates/soa/src/cursor.rs crates/soa/src/env.rs crates/soa/src/functions.rs crates/soa/src/integration.rs crates/soa/src/sample.rs crates/soa/src/xsql.rs

crates/soa/src/lib.rs:
crates/soa/src/bpelx.rs:
crates/soa/src/cursor.rs:
crates/soa/src/env.rs:
crates/soa/src/functions.rs:
crates/soa/src/integration.rs:
crates/soa/src/sample.rs:
crates/soa/src/xsql.rs:
