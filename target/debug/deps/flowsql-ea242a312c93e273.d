/root/repo/target/debug/deps/flowsql-ea242a312c93e273.d: src/lib.rs

/root/repo/target/debug/deps/flowsql-ea242a312c93e273: src/lib.rs

src/lib.rs:
