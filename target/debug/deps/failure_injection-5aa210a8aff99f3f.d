/root/repo/target/debug/deps/failure_injection-5aa210a8aff99f3f.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-5aa210a8aff99f3f: tests/failure_injection.rs

tests/failure_injection.rs:
