/root/repo/target/debug/deps/set_access-84155d031b059f34.d: crates/bench/benches/set_access.rs

/root/repo/target/debug/deps/set_access-84155d031b059f34: crates/bench/benches/set_access.rs

crates/bench/benches/set_access.rs:
