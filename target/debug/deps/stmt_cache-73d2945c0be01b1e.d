/root/repo/target/debug/deps/stmt_cache-73d2945c0be01b1e.d: crates/sqlkernel/tests/stmt_cache.rs

/root/repo/target/debug/deps/stmt_cache-73d2945c0be01b1e: crates/sqlkernel/tests/stmt_cache.rs

crates/sqlkernel/tests/stmt_cache.rs:
