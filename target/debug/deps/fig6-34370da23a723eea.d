/root/repo/target/debug/deps/fig6-34370da23a723eea.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-34370da23a723eea: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
